//! The bulk-synchronous TCP cluster runtime.
//!
//! Since the `RoundTransport` refactor this module contains **no round
//! logic of its own**: every node is a [`congos_sim::transport::NodeDriver`]
//! — the same per-node superstep the simulator's engine is built on —
//! driving a [`TcpTransport`](crate::transport::TcpTransport). The runtime
//! only wires up sockets, schedules injections and aggregates reports.

use std::io;
use std::net::TcpListener;

use congos::{CongosConfig, CongosInput, CongosNode, DeliveredRumor};
use congos_sim::topology::TopologySpec;
use congos_sim::transport::NodeDriver;
use congos_sim::{OutputRecord, ProcessId, Round, Tag};

use crate::transport::TcpTransport;

/// Configuration of a localhost CONGOS cluster.
#[derive(Clone, Debug)]
pub struct NetConfig {
    n: usize,
    base_port: u16,
    seed: u64,
    rounds: u64,
    congos: CongosConfig,
    topology: TopologySpec,
    watch: Vec<ProcessId>,
}

impl NetConfig {
    /// A cluster of `n` nodes listening on `base_port..base_port+n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or the port range would overflow.
    pub fn new(n: usize, base_port: u16) -> Self {
        assert!(n > 0, "need at least one node");
        assert!(
            base_port.checked_add(n as u16).is_some(),
            "port range overflow"
        );
        NetConfig {
            n,
            base_port,
            seed: 0,
            rounds: 1,
            congos: CongosConfig::base(),
            topology: TopologySpec::Complete,
            watch: Vec::new(),
        }
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of rounds.
    pub fn rounds(mut self, rounds: u64) -> Self {
        self.rounds = rounds;
        self
    }

    /// Sets the CONGOS protocol configuration.
    pub fn congos(mut self, cfg: CongosConfig) -> Self {
        self.congos = cfg;
        self
    }

    /// Sets the communication topology. Every node derives the same seeded
    /// edge set from `(topology, n, seed)` as the simulator, and drops
    /// outbound frames for links absent in the current round — the
    /// networked cluster and `sim::engine` deliver over identical graphs.
    ///
    /// # Panics
    ///
    /// Panics if the spec cannot be instantiated over `n` nodes.
    pub fn topology(mut self, topology: TopologySpec) -> Self {
        if let Err(e) = topology.validate(self.n) {
            panic!("invalid topology {topology} for n={}: {e}", self.n);
        }
        self.topology = topology;
        self
    }

    /// Marks `members` as observing-coalition nodes: each records the
    /// `(round, sender, tag)` metadata of every envelope delivered to it
    /// (the E13 source-prediction tap). Recording happens after the inbox
    /// is handed to the node and consumes no RNG, so a watched cluster is
    /// bit-identical to an unwatched one.
    pub fn watch(mut self, members: Vec<ProcessId>) -> Self {
        self.watch = members;
        self
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// First port of the cluster's port range.
    pub fn base_port(&self) -> u16 {
        self.base_port
    }

    /// Master seed.
    pub fn master_seed(&self) -> u64 {
        self.seed
    }

    /// Rounds to execute.
    pub fn round_count(&self) -> u64 {
        self.rounds
    }

    /// The configured topology spec.
    pub fn topology_spec(&self) -> TopologySpec {
        self.topology
    }
}

/// One node's share of a cluster run.
#[derive(Debug)]
pub struct NodeReport {
    /// The node.
    pub id: ProcessId,
    /// Rumors this node delivered, ordered by round.
    pub deliveries: Vec<OutputRecord<DeliveredRumor>>,
    /// Protocol messages this node shipped over sockets.
    pub messages: u64,
    /// Outbound messages dropped at this node because the topology had no
    /// link that round.
    pub topology_drops: u64,
    /// Rounds executed.
    pub rounds: u64,
    /// Delivery metadata `(round, sender, tag)` recorded at this node, if it
    /// was in the watched coalition (empty otherwise).
    pub sightings: Vec<(Round, ProcessId, Tag)>,
}

/// Result of a cluster run.
#[derive(Debug)]
pub struct NetReport {
    /// Every delivered rumor, ordered by `(round, process)`.
    pub deliveries: Vec<OutputRecord<DeliveredRumor>>,
    /// Total protocol messages sent over sockets (excluding round markers
    /// and local self-deliveries).
    pub messages: u64,
    /// Outbound messages dropped at the sender because the topology had no
    /// link to the destination that round (0 on the complete topology).
    pub topology_drops: u64,
    /// Rounds executed.
    pub rounds: u64,
    /// Coalition sightings `(round, observer, sender, tag)` across all
    /// watched nodes, sorted by `(round, observer, sender, tag)` — the same
    /// canonical order regardless of thread interleaving.
    pub sightings: Vec<(Round, ProcessId, ProcessId, Tag)>,
}

impl NetReport {
    /// Aggregates per-node reports into a cluster report.
    pub fn aggregate(nodes: impl IntoIterator<Item = NodeReport>) -> Self {
        let mut report = NetReport {
            deliveries: Vec::new(),
            messages: 0,
            topology_drops: 0,
            rounds: 0,
            sightings: Vec::new(),
        };
        for node in nodes {
            report.deliveries.extend(node.deliveries);
            report.messages += node.messages;
            report.topology_drops += node.topology_drops;
            report.rounds = report.rounds.max(node.rounds);
            report
                .sightings
                .extend(node.sightings.into_iter().map(|(r, s, t)| (r, node.id, s, t)));
        }
        report.deliveries.sort_by_key(|o| (o.round, o.process));
        report
            .sightings
            .sort_by_key(|&(r, o, s, t)| (r, o, s, t.name()));
        report
    }
}

/// Drives one node over an already-connected transport: builds the
/// `CongosNode` exactly as the simulator would (same forked seed, same
/// config) and runs the shared superstep loop.
fn drive_node(
    me: ProcessId,
    cfg: &NetConfig,
    mut transport: TcpTransport,
    mut injections: Vec<(u64, CongosInput)>,
) -> io::Result<NodeReport> {
    injections.sort_by_key(|(r, _)| *r);
    let congos_cfg = cfg.congos.clone();
    let mut driver = NodeDriver::<CongosNode>::with_factory(me, cfg.n, cfg.seed, |id, n, _| {
        CongosNode::with_config(id, n, congos_cfg)
    });
    if cfg.watch.contains(&me) {
        driver.record_sightings(true);
    }
    driver.run_rounds(&mut transport, cfg.rounds, injections)?;
    let sightings = driver.take_sightings();
    Ok(NodeReport {
        id: me,
        deliveries: driver.into_outputs(),
        messages: transport.messages(),
        topology_drops: transport.topology_drops(),
        rounds: cfg.rounds,
        sightings,
    })
}

/// Runs a CONGOS cluster over localhost TCP to completion (every node a
/// thread of this process; for true multi-process deployment see
/// [`run_node_process`] and the `congos-node` / `congos-coordinator`
/// binaries).
///
/// `injections` schedules rumors as `(round, process, input)`; at most one
/// injection per process per round (the model's rule).
///
/// # Errors
///
/// Returns any socket-level error (bind, connect, frame, peer loss)
/// encountered while running the cluster.
pub fn run_cluster(
    cfg: NetConfig,
    injections: Vec<(u64, ProcessId, CongosInput)>,
) -> io::Result<NetReport> {
    let n = cfg.n;

    // Bind all listeners up front so dialing cannot race the binds.
    let mut listeners = Vec::with_capacity(n);
    for i in 0..n {
        let l = TcpListener::bind(("127.0.0.1", cfg.base_port + i as u16))?;
        listeners.push(l);
    }

    let mut per_node_inj: Vec<Vec<(u64, CongosInput)>> = (0..n).map(|_| Vec::new()).collect();
    for (round, pid, input) in injections {
        per_node_inj[pid.as_usize()].push((round, input));
    }

    let mut results: Vec<io::Result<NodeReport>> = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n);
        for (i, (listener, my_inj)) in listeners.into_iter().zip(per_node_inj).enumerate() {
            let cfg = &cfg;
            handles.push(scope.spawn(move || {
                let me = ProcessId::new(i);
                let transport = TcpTransport::with_listener(
                    me,
                    cfg.n,
                    cfg.base_port,
                    listener,
                    cfg.topology,
                    cfg.seed,
                )?;
                drive_node(me, cfg, transport, my_inj)
            }));
        }
        for h in handles {
            results.push(h.join().expect("node thread panicked"));
        }
    });

    let mut nodes = Vec::with_capacity(n);
    for res in results {
        nodes.push(res?);
    }
    Ok(NetReport::aggregate(nodes))
}

/// Runs ONE node of a cluster in the calling process — the entry point for
/// true multi-process deployment (see the `congos-node` binary). Blocks
/// until `rounds` complete and returns this node's report.
///
/// # Errors
///
/// Returns socket-level errors (bind, connect, frame, peer loss).
pub fn run_node_process(
    id: usize,
    n: usize,
    base_port: u16,
    rounds: u64,
    seed: u64,
    topology: TopologySpec,
    injections: Vec<(u64, CongosInput)>,
) -> io::Result<NodeReport> {
    let cfg = NetConfig::new(n, base_port)
        .rounds(rounds)
        .seed(seed)
        .topology(topology);
    let me = ProcessId::new(id);
    let transport = TcpTransport::connect(me, n, base_port, topology, seed)?;
    drive_node(me, &cfg, transport, injections)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rumor_delivered_over_real_sockets() {
        let report = run_cluster(
            NetConfig::new(4, 18510).rounds(70).seed(3),
            vec![(
                0,
                ProcessId::new(0),
                CongosInput {
                    wid: 0,
                    data: b"tcp".to_vec(),
                    deadline: 64,
                    dest: vec![ProcessId::new(2), ProcessId::new(3)],
                },
            )],
        )
        .expect("cluster run");
        assert_eq!(report.deliveries.len(), 2);
        for d in &report.deliveries {
            assert_eq!(d.value.data, b"tcp".to_vec());
            assert!(d.round.as_u64() <= 64);
        }
        assert!(report.messages > 0);
    }

    #[test]
    fn multiple_sources_and_rounds() {
        let report = run_cluster(
            NetConfig::new(5, 18530).rounds(80).seed(4),
            vec![
                (
                    0,
                    ProcessId::new(0),
                    CongosInput {
                        wid: 0,
                        data: vec![1],
                        deadline: 64,
                        dest: vec![ProcessId::new(4)],
                    },
                ),
                (
                    5,
                    ProcessId::new(1),
                    CongosInput {
                        wid: 1,
                        data: vec![2],
                        deadline: 64,
                        dest: vec![ProcessId::new(3), ProcessId::new(4)],
                    },
                ),
            ],
        )
        .expect("cluster run");
        assert_eq!(report.deliveries.len(), 3);
        let w1: Vec<_> = report
            .deliveries
            .iter()
            .filter(|d| d.value.wid == 1)
            .collect();
        assert_eq!(w1.len(), 2);
        assert!(w1.iter().all(|d| d.round.as_u64() <= 5 + 64));
    }

    #[test]
    fn single_node_cluster() {
        let report = run_cluster(
            NetConfig::new(1, 18550).rounds(4),
            vec![(
                0,
                ProcessId::new(0),
                CongosInput {
                    wid: 0,
                    data: vec![7],
                    deadline: 16,
                    dest: vec![ProcessId::new(0)],
                },
            )],
        )
        .expect("cluster run");
        assert_eq!(report.deliveries.len(), 1);
        assert_eq!(report.messages, 0);
    }
}
