//! `TcpTransport` — the socket-backed [`RoundTransport`].
//!
//! One instance backs ONE node of a cluster. Topology of the plumbing:
//!
//! * **Outbound**: one TCP connection per peer, dialed with capped
//!   exponential backoff while the peers come up. Each connection is owned
//!   by a dedicated writer thread fed through a bounded channel of encoded
//!   frames — a stalled peer exerts backpressure instead of growing an
//!   unbounded queue.
//! * **Inbound**: one accepted TCP connection per peer, each owned by a
//!   reader thread that decodes frames (with the codec's frame-size caps)
//!   and pushes events into one bounded channel the round loop drains.
//!   A read error or EOF becomes a [`PeerLost`](Event::PeerLost) event, so
//!   a dead peer surfaces as a clean `io::Error` at the next barrier
//!   instead of a hang.
//! * **Self-sends** loop back in memory and never touch a socket.
//! * **Sender-side topology filtering**: frames whose `(src, dst)` link is
//!   absent this round are dropped before the wire — exactly the envelopes
//!   the simulator's delivery phase would drop, which keeps delivery sets
//!   identical and saves the hop.
//!
//! The barrier ([`recv_until_barrier`](RoundTransport::recv_until_barrier))
//! counts `EndOfRound` markers. Peers may run one superstep ahead (they can
//! finish round `r` and send round `r + 1` traffic before this node passes
//! its own round-`r` barrier), so future-round frames are parked in a
//! carried queue scanned once per round. Past-round frames are a protocol
//! violation (per-peer streams are FIFO and the barrier was passed) and
//! error out as `InvalidData`.

use std::collections::VecDeque;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use congos::{tag_by_name, CongosMsg};
use congos_sim::message::SendColumns;
use congos_sim::topology::{Topology, TopologySpec};
use congos_sim::transport::RoundTransport;
use congos_sim::{Envelope, ProcessId, Round, Tag};

use crate::codec::{decode_frame, encode_frame, WireFrame};

/// How long to keep retrying an outbound dial while peers come up.
pub const CONNECT_DEADLINE: Duration = Duration::from_secs(20);
/// Backoff cap between dial retries.
const CONNECT_BACKOFF_CAP: Duration = Duration::from_millis(100);
/// Default cap on waiting for a round barrier before declaring the cluster
/// wedged.
pub const BARRIER_TIMEOUT: Duration = Duration::from_secs(30);
/// Grace period for draining already-queued frames once a peer is known
/// lost — the missing end-of-round markers may still be in the channel.
const PEER_LOSS_GRACE: Duration = Duration::from_millis(500);
/// Bound of the inbound event channel (frames from all peers).
const EVENT_CHANNEL_BOUND: usize = 4096;
/// Bound of each per-peer outbound frame channel.
const WRITER_CHANNEL_BOUND: usize = 256;

enum Event {
    Frame(WireFrame),
    /// A peer's connection died (EOF or read error). Carries a diagnostic.
    PeerLost(String),
}

enum WriterCmd {
    Bytes(Vec<u8>),
    Flush,
}

/// The socket-backed delivery substrate for one node of a localhost (or
/// LAN) cluster. See the module docs for the wiring.
#[derive(Debug)]
pub struct TcpTransport {
    me: ProcessId,
    n: usize,
    topology: Topology,
    barrier_timeout: Duration,
    /// `None` only mid-`Drop` (taking it unblocks readers stuck on a full
    /// channel).
    event_rx: Option<Receiver<Event>>,
    writers: Vec<Option<SyncSender<WriterCmd>>>,
    writer_handles: Vec<JoinHandle<()>>,
    reader_handles: Vec<JoinHandle<()>>,
    /// Clones of the accepted streams, kept to shut readers down on `Drop`.
    reader_streams: Vec<TcpStream>,
    /// Loopback buffer for self-sends (drained at the next receive).
    self_inbox: Vec<Envelope<CongosMsg>>,
    /// Frames from future rounds, parked until their round starts.
    carried: VecDeque<WireFrame>,
    /// Diagnostics of peers lost so far.
    lost: Vec<String>,
    messages: u64,
    topology_drops: u64,
}

fn connect_with_backoff(addr: (&str, u16), deadline: Duration) -> io::Result<TcpStream> {
    let start = Instant::now();
    let mut delay = Duration::from_millis(1);
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => {
                if start.elapsed() >= deadline {
                    return Err(io::Error::new(
                        e.kind(),
                        format!(
                            "could not connect to peer at {}:{} within {:?}: {e}",
                            addr.0, addr.1, deadline
                        ),
                    ));
                }
                std::thread::sleep(delay);
                delay = (delay * 2).min(CONNECT_BACKOFF_CAP);
            }
        }
    }
}

impl TcpTransport {
    /// Connects node `me` of an `n`-node cluster on `base_port..base_port+n`
    /// (node `i` listens on `base_port + i`), binding its own listener.
    ///
    /// Blocks until all `n − 1` peer connections exist in both directions,
    /// retrying dials with capped exponential backoff for up to
    /// [`CONNECT_DEADLINE`].
    ///
    /// # Errors
    ///
    /// Bind failures, dial failures after the retry deadline, and accept
    /// timeouts (a peer that never dialed in).
    ///
    /// # Panics
    ///
    /// Panics if the topology spec cannot be instantiated over `n` nodes.
    pub fn connect(
        me: ProcessId,
        n: usize,
        base_port: u16,
        topology: TopologySpec,
        seed: u64,
    ) -> io::Result<Self> {
        Self::connect_deadline(me, n, base_port, topology, seed, CONNECT_DEADLINE)
    }

    /// [`connect`](Self::connect) with an explicit handshake deadline
    /// (applies to both the dial retries and the accept wait).
    ///
    /// # Errors
    ///
    /// Same as [`connect`](Self::connect).
    ///
    /// # Panics
    ///
    /// Panics if the topology spec cannot be instantiated over `n` nodes.
    pub fn connect_deadline(
        me: ProcessId,
        n: usize,
        base_port: u16,
        topology: TopologySpec,
        seed: u64,
        deadline: Duration,
    ) -> io::Result<Self> {
        let port = base_port + me.as_usize() as u16;
        let listener = TcpListener::bind(("127.0.0.1", port)).map_err(|e| {
            io::Error::new(e.kind(), format!("node {me}: bind 127.0.0.1:{port}: {e}"))
        })?;
        Self::build(me, n, base_port, listener, topology, seed, deadline)
    }

    /// Like [`connect`](Self::connect) with a pre-bound listener — lets a
    /// cluster harness bind every port before any node dials, removing the
    /// bind/dial race entirely.
    ///
    /// # Errors
    ///
    /// Dial failures after the retry deadline and accept timeouts.
    ///
    /// # Panics
    ///
    /// Panics if the topology spec cannot be instantiated over `n` nodes.
    pub fn with_listener(
        me: ProcessId,
        n: usize,
        base_port: u16,
        listener: TcpListener,
        topology: TopologySpec,
        seed: u64,
    ) -> io::Result<Self> {
        Self::build(me, n, base_port, listener, topology, seed, CONNECT_DEADLINE)
    }

    fn build(
        me: ProcessId,
        n: usize,
        base_port: u16,
        listener: TcpListener,
        topology: TopologySpec,
        seed: u64,
        deadline: Duration,
    ) -> io::Result<Self> {
        let (event_tx, event_rx) = sync_channel::<Event>(EVENT_CHANNEL_BOUND);
        let mut transport = TcpTransport {
            me,
            n,
            topology: Topology::build(topology, n, seed),
            barrier_timeout: BARRIER_TIMEOUT,
            event_rx: Some(event_rx),
            writers: (0..n).map(|_| None).collect(),
            writer_handles: Vec::new(),
            reader_handles: Vec::new(),
            reader_streams: Vec::new(),
            self_inbox: Vec::new(),
            carried: VecDeque::new(),
            lost: Vec::new(),
            messages: 0,
            topology_drops: 0,
        };
        if n == 1 {
            return Ok(transport); // no sockets at all
        }

        // Accept n−1 inbound connections on a helper thread while this
        // thread dials out, so neither side of the handshake can starve
        // the other. The listener polls non-blocking against a deadline —
        // a peer that never dials in becomes an error, not a hang.
        let accept_handle = std::thread::spawn(move || -> io::Result<Vec<TcpStream>> {
            listener.set_nonblocking(true)?;
            let start = Instant::now();
            let mut streams = Vec::with_capacity(n - 1);
            while streams.len() < n - 1 {
                match listener.accept() {
                    Ok((stream, _)) => {
                        stream.set_nonblocking(false)?;
                        stream.set_nodelay(true).ok();
                        streams.push(stream);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        if start.elapsed() >= deadline {
                            return Err(io::Error::new(
                                io::ErrorKind::TimedOut,
                                format!(
                                    "accepted only {}/{} peer connections within {deadline:?}",
                                    streams.len(),
                                    n - 1,
                                ),
                            ));
                        }
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(e) => return Err(e),
                }
            }
            Ok(streams)
        });

        // Dial every peer (ascending id), with backoff while they come up.
        let mut dial_err = None;
        for j in 0..n {
            if j == me.as_usize() {
                continue;
            }
            let addr = ("127.0.0.1", base_port + j as u16);
            match connect_with_backoff(addr, deadline) {
                Ok(stream) => {
                    stream.set_nodelay(true).ok();
                    let (tx, rx) = sync_channel::<WriterCmd>(WRITER_CHANNEL_BOUND);
                    transport.writer_handles.push(std::thread::spawn(move || {
                        writer_loop(stream, rx);
                    }));
                    transport.writers[j] = Some(tx);
                }
                Err(e) => {
                    dial_err = Some(io::Error::new(e.kind(), format!("node {me}: {e}")));
                    break;
                }
            }
        }

        let accepted = accept_handle
            .join()
            .unwrap_or_else(|_| Err(io::Error::other("accept thread panicked")));
        if let Some(e) = dial_err {
            return Err(e); // Drop tears down whatever came up
        }
        let accepted = accepted.map_err(|e| {
            io::Error::new(e.kind(), format!("node {me}: accepting peers: {e}"))
        })?;

        for stream in accepted {
            transport.reader_streams.push(stream.try_clone()?);
            let tx = event_tx.clone();
            let peer = stream
                .peer_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| "<unknown>".into());
            transport.reader_handles.push(std::thread::spawn(move || {
                reader_loop(stream, tx, peer);
            }));
        }
        // `event_tx` drops here: the channel disconnects only when every
        // reader thread has exited.
        Ok(transport)
    }

    /// Overrides the barrier wait cap (default [`BARRIER_TIMEOUT`]).
    pub fn barrier_timeout(mut self, timeout: Duration) -> Self {
        self.barrier_timeout = timeout;
        self
    }

    /// Protocol messages actually shipped over sockets (self-sends and
    /// topology drops excluded; round markers not counted).
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Outbound messages dropped at the sender because the topology had no
    /// link that round (always 0 on the complete topology).
    pub fn topology_drops(&self) -> u64 {
        self.topology_drops
    }

    /// The topology frames are filtered against.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    fn push_to_writer(&mut self, dst: usize, cmd: WriterCmd) -> io::Result<()> {
        let tx = self.writers[dst]
            .as_ref()
            .expect("writer exists for every peer");
        tx.send(cmd).map_err(|_| {
            io::Error::new(
                io::ErrorKind::BrokenPipe,
                format!(
                    "node {}: connection to peer p{dst} is gone (write side)",
                    self.me
                ),
            )
        })
    }

    fn peer_loss_error(&self, round: Round, eor: usize) -> io::Error {
        io::Error::new(
            io::ErrorKind::ConnectionReset,
            format!(
                "node {}: {round} barrier stalled at {eor}/{} end-of-round markers; \
                 lost peer(s): {}",
                self.me,
                self.n - 1,
                self.lost.join(", ")
            ),
        )
    }
}

fn writer_loop(stream: TcpStream, rx: Receiver<WriterCmd>) {
    let mut w = BufWriter::new(stream);
    while let Ok(cmd) = rx.recv() {
        let res = match cmd {
            WriterCmd::Bytes(bytes) => w.write_all(&bytes),
            WriterCmd::Flush => w.flush(),
        };
        if res.is_err() {
            // Exiting drops `rx`; the round loop sees the disconnect as a
            // send failure and reports the lost peer.
            return;
        }
    }
    let _ = w.flush();
}

fn reader_loop(stream: TcpStream, tx: SyncSender<Event>, peer: String) {
    let mut reader = BufReader::new(stream);
    loop {
        match decode_frame(&mut reader) {
            Ok(frame) => {
                if tx.send(Event::Frame(frame)).is_err() {
                    return; // round loop gone; nothing to report to
                }
            }
            Err(e) => {
                let diag = if e.kind() == io::ErrorKind::UnexpectedEof {
                    format!("{peer} (clean close)")
                } else {
                    format!("{peer} ({e})")
                };
                let _ = tx.send(Event::PeerLost(diag));
                return;
            }
        }
    }
}

impl RoundTransport<CongosMsg> for TcpTransport {
    fn send_outbox(
        &mut self,
        round: Round,
        src: ProcessId,
        out: &mut SendColumns<CongosMsg>,
    ) -> io::Result<()> {
        debug_assert_eq!(src, self.me, "a TcpTransport serves exactly one node");
        let r = round.as_u64();
        // Collect first: draining borrows `out` while the writer sends
        // borrow `self` mutably.
        let drained: Vec<(ProcessId, Tag, CongosMsg)> = out.drain().collect();
        for (dst, tag, payload) in drained {
            if dst == self.me {
                self.self_inbox.push(Envelope {
                    src: self.me,
                    dst,
                    round,
                    tag,
                    payload,
                });
                continue;
            }
            if !self.topology.connected(round, self.me, dst) {
                // The simulator's delivery phase would drop this envelope;
                // dropping at the sender keeps delivery sets identical and
                // saves the wire hop.
                self.topology_drops += 1;
                continue;
            }
            let frame = WireFrame::Msg {
                src: self.me,
                round: r,
                tag: tag.name().to_string(),
                payload,
            };
            let mut bytes = Vec::with_capacity(64);
            encode_frame(&mut bytes, &frame)?;
            self.push_to_writer(dst.as_usize(), WriterCmd::Bytes(bytes))?;
            self.messages += 1;
        }
        Ok(())
    }

    fn end_of_round(&mut self, round: Round, src: ProcessId) -> io::Result<()> {
        debug_assert_eq!(src, self.me);
        let marker = WireFrame::EndOfRound {
            src: self.me,
            round: round.as_u64(),
        };
        let mut bytes = Vec::with_capacity(16);
        encode_frame(&mut bytes, &marker)?;
        for dst in 0..self.n {
            if self.writers[dst].is_some() {
                self.push_to_writer(dst, WriterCmd::Bytes(bytes.clone()))?;
                self.push_to_writer(dst, WriterCmd::Flush)?;
            }
        }
        Ok(())
    }

    fn recv_until_barrier(
        &mut self,
        round: Round,
        dst: ProcessId,
        inbox: &mut Vec<Envelope<CongosMsg>>,
    ) -> io::Result<()> {
        debug_assert_eq!(dst, self.me);
        let r = round.as_u64();
        inbox.clear();
        inbox.append(&mut self.self_inbox);
        let mut eor = 0usize;

        // One decoded frame: deliver, count, park, or reject.
        fn classify(
            frame: WireFrame,
            r: u64,
            me: ProcessId,
            inbox: &mut Vec<Envelope<CongosMsg>>,
            eor: &mut usize,
        ) -> io::Result<Option<WireFrame>> {
            match frame {
                WireFrame::Msg {
                    src,
                    round: fr,
                    tag,
                    payload,
                } => {
                    if fr == r {
                        inbox.push(Envelope {
                            src,
                            dst: me,
                            round: Round(r),
                            tag: tag_by_name(&tag).unwrap_or(Tag("remote")),
                            payload,
                        });
                        Ok(None)
                    } else if fr > r {
                        Ok(Some(WireFrame::Msg {
                            src,
                            round: fr,
                            tag,
                            payload,
                        }))
                    } else {
                        // Streams are FIFO and the round-`fr` barrier was
                        // already passed — a frame this old is a bug or a
                        // hostile peer.
                        Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("stale frame from {src}: round {fr} < current {r}"),
                        ))
                    }
                }
                WireFrame::EndOfRound { src, round: fr } => {
                    if fr == r {
                        *eor += 1;
                        Ok(None)
                    } else if fr > r {
                        Ok(Some(WireFrame::EndOfRound { src, round: fr }))
                    } else {
                        Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("stale end-of-round from {src}: {fr} < current {r}"),
                        ))
                    }
                }
            }
        }

        // Frames that arrived during previous rounds, scanned exactly once.
        for frame in std::mem::take(&mut self.carried) {
            if let Some(parked) = classify(frame, r, self.me, inbox, &mut eor)? {
                self.carried.push_back(parked);
            }
        }

        let start = Instant::now();
        while eor < self.n - 1 {
            let timeout = if self.lost.is_empty() {
                match self.barrier_timeout.checked_sub(start.elapsed()) {
                    Some(left) if !left.is_zero() => left,
                    _ => {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            format!(
                                "node {}: {round} barrier timed out after {:?} \
                                 ({eor}/{} end-of-round markers)",
                                self.me,
                                self.barrier_timeout,
                                self.n - 1
                            ),
                        ));
                    }
                }
            } else {
                // A peer is gone; drain whatever it already sent, then fail
                // fast instead of waiting out the full barrier timeout.
                PEER_LOSS_GRACE
            };
            let rx = self.event_rx.as_ref().expect("receiver present outside Drop");
            match rx.recv_timeout(timeout) {
                Ok(Event::Frame(frame)) => {
                    if let Some(parked) = classify(frame, r, self.me, inbox, &mut eor)? {
                        self.carried.push_back(parked);
                    }
                }
                Ok(Event::PeerLost(diag)) => {
                    self.lost.push(diag);
                }
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected)
                    if !self.lost.is_empty() =>
                {
                    return Err(self.peer_loss_error(round, eor));
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(io::Error::new(
                        io::ErrorKind::ConnectionReset,
                        format!(
                            "node {}: every peer reader exited before the {round} \
                             barrier completed ({eor}/{})",
                            self.me,
                            self.n - 1
                        ),
                    ));
                }
                Err(RecvTimeoutError::Timeout) => continue, // loop re-checks deadline
            }
        }
        Ok(())
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        // Unblock readers stuck sending into a full event channel…
        drop(self.event_rx.take());
        // …and readers stuck in a socket read.
        for s in &self.reader_streams {
            let _ = s.shutdown(Shutdown::Both);
        }
        // Writer threads flush what they have and exit once their channel
        // disconnects.
        for w in &mut self.writers {
            drop(w.take());
        }
        for h in self.writer_handles.drain(..) {
            let _ = h.join();
        }
        for h in self.reader_handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congos_sim::transport::NodeDriver;
    use congos::{CongosInput, CongosNode};

    /// Two real nodes over loopback sockets: a rumor injected at node 0
    /// reaches node 1, driven entirely through the generic NodeDriver.
    #[test]
    fn two_nodes_exchange_over_sockets() {
        let base = 21200;
        let h = std::thread::spawn(move || {
            let mut t = TcpTransport::connect(
                ProcessId::new(1),
                2,
                base,
                TopologySpec::Complete,
                7,
            )
            .expect("node 1 transport");
            let mut d = NodeDriver::<CongosNode>::new(ProcessId::new(1), 2, 7);
            d.run_rounds(&mut t, 40, vec![]).expect("node 1 rounds");
            d.into_outputs()
        });
        let mut t =
            TcpTransport::connect(ProcessId::new(0), 2, base, TopologySpec::Complete, 7)
                .expect("node 0 transport");
        let mut d = NodeDriver::<CongosNode>::new(ProcessId::new(0), 2, 7);
        let inj = CongosInput {
            wid: 0,
            data: b"hello".to_vec(),
            deadline: 32,
            dest: vec![ProcessId::new(1)],
        };
        d.run_rounds(&mut t, 40, vec![(0, inj)]).expect("node 0 rounds");
        assert!(t.messages() > 0, "traffic crossed the wire");
        let outs1 = h.join().expect("node 1 thread");
        assert_eq!(outs1.len(), 1, "node 1 delivered the rumor");
        assert_eq!(outs1[0].value.data, b"hello".to_vec());
    }

    /// A node whose peer dies mid-run gets a clean error, not a hang.
    #[test]
    fn peer_loss_is_a_clean_error() {
        let base = 21220;
        // Peer runs only 2 rounds then drops its transport (closing both
        // connections); the survivor wants 50.
        let h = std::thread::spawn(move || {
            let mut t = TcpTransport::connect(
                ProcessId::new(1),
                2,
                base,
                TopologySpec::Complete,
                1,
            )
            .expect("node 1 transport");
            let mut d = NodeDriver::<CongosNode>::new(ProcessId::new(1), 2, 1);
            d.run_rounds(&mut t, 2, vec![]).expect("node 1 rounds");
        });
        let mut t =
            TcpTransport::connect(ProcessId::new(0), 2, base, TopologySpec::Complete, 1)
                .expect("node 0 transport")
                .barrier_timeout(Duration::from_secs(10));
        let mut d = NodeDriver::<CongosNode>::new(ProcessId::new(0), 2, 1);
        let err = d
            .run_rounds(&mut t, 50, vec![])
            .expect_err("peer death must surface as an error");
        h.join().expect("peer thread");
        let msg = err.to_string();
        assert!(
            msg.contains("lost peer") || msg.contains("gone") || msg.contains("reader"),
            "diagnostic names the peer loss: {msg}"
        );
    }

    /// Dialing a cluster whose peer never shows up fails with a timeout
    /// diagnostic instead of blocking forever.
    #[test]
    fn missing_peer_times_out() {
        // Nothing listens on the peer port and nothing ever dials us: the
        // accept loop and the dial both run against the deadline. Use a
        // bogus port pair well outside every other test's range.
        let deadline = Duration::from_millis(600);
        let start = Instant::now();
        let err = TcpTransport::connect_deadline(
            ProcessId::new(0),
            2,
            21240,
            TopologySpec::Complete,
            0,
            deadline,
        )
        .expect_err("no peer exists");
        assert!(start.elapsed() < deadline + Duration::from_secs(10));
        let msg = err.to_string();
        assert!(
            msg.contains("connect") || msg.contains("accept"),
            "diagnostic mentions the handshake: {msg}"
        );
    }
}
