//! A single CONGOS node as an OS process — real multi-process deployment.
//!
//! Start `n` of these (one per id), each with the same `--n`, `--base-port`,
//! `--rounds` and `--seed`; they find each other on localhost and run the
//! protocol in bulk-synchronous rounds. Deliveries print to stdout.
//!
//! ```text
//! congos-node --id 0 --n 4 --base-port 19000 --rounds 70 \
//!             --inject 0:2,3:68656c6c6f     # round 0, dests {2,3}, "hello"
//! congos-node --id 1 --n 4 --base-port 19000 --rounds 70
//! congos-node --id 2 --n 4 --base-port 19000 --rounds 70
//! congos-node --id 3 --n 4 --base-port 19000 --rounds 70
//! ```

use std::process::exit;

use congos::CongosInput;
use congos_net::runtime::run_node_process;
use congos_sim::{ProcessId, TopologySpec};

fn usage() -> ! {
    eprintln!(
        "usage: congos-node --id <i> --n <n> [--base-port <p>] [--rounds <r>] \
         [--seed <s>] [--topology <complete|expander:d|churn:p>] \
         [--inject <round>:<d1,d2,..>:<hex>]..."
    );
    exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut id: Option<usize> = None;
    let mut n: Option<usize> = None;
    let mut base_port: u16 = 19000;
    let mut rounds: u64 = 70;
    let mut seed: u64 = 0;
    let mut topology = TopologySpec::Complete;
    let mut injections: Vec<(u64, CongosInput)> = Vec::new();

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--id" => id = val().parse().ok(),
            "--n" => n = val().parse().ok(),
            "--base-port" => base_port = val().parse().unwrap_or_else(|_| usage()),
            "--rounds" => rounds = val().parse().unwrap_or_else(|_| usage()),
            "--seed" => seed = val().parse().unwrap_or_else(|_| usage()),
            "--topology" => topology = val().parse().unwrap_or_else(|_| usage()),
            "--inject" => {
                let spec = val();
                let parts: Vec<&str> = spec.splitn(3, ':').collect();
                if parts.len() != 3 {
                    usage();
                }
                let round: u64 = parts[0].parse().unwrap_or_else(|_| usage());
                let dest: Vec<ProcessId> = parts[1]
                    .split(',')
                    .map(|d| ProcessId::new(d.parse().unwrap_or_else(|_| usage())))
                    .collect();
                let data = decode_hex(parts[2]).unwrap_or_else(|| usage());
                injections.push((
                    round,
                    CongosInput {
                        wid: injections.len() as u64,
                        data,
                        deadline: 64,
                        dest,
                    },
                ));
            }
            _ => usage(),
        }
    }
    let (Some(id), Some(n)) = (id, n) else { usage() };

    match run_node_process(id, n, base_port, rounds, seed, topology, injections) {
        Ok(deliveries) => {
            for d in deliveries {
                println!(
                    "round {} process p{} delivered wid={} ({} bytes) via {:?}",
                    d.round.as_u64(),
                    id,
                    d.value.wid,
                    d.value.data.len(),
                    d.value.via
                );
            }
        }
        Err(e) => {
            eprintln!("node {id} failed: {e}");
            exit(1);
        }
    }
}

fn decode_hex(s: &str) -> Option<Vec<u8>> {
    if s.len() % 2 != 0 {
        return None;
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).ok())
        .collect()
}
