//! A single CONGOS node as an OS process — real multi-process deployment.
//!
//! Start `n` of these (one per id), each with the same `--n`, `--base-port`,
//! `--rounds` and `--seed`; they find each other on localhost and run the
//! protocol in bulk-synchronous rounds. Deliveries print to stdout; with
//! `--json` the run ends with one machine-readable report line (what
//! `congos-coordinator` parses).
//!
//! ```text
//! congos-node --id 0 --n 4 --base-port 19000 --rounds 70 \
//!             --inject 0:2,3:68656c6c6f     # round 0, dests {2,3}, "hello"
//! congos-node --id 1 --n 4 --base-port 19000 --rounds 70
//! congos-node --id 2 --n 4 --base-port 19000 --rounds 70
//! congos-node --id 3 --n 4 --base-port 19000 --rounds 70
//! ```
//!
//! Failure behavior: a bind failure, an unreachable peer, or a peer lost
//! mid-run exits nonzero with a diagnostic on stderr — the transport's
//! barrier never hangs on a dead peer.

use std::process::exit;

use congos::CongosInput;
use congos_net::runtime::run_node_process;
use congos_sim::{ProcessId, TopologySpec};

const USAGE: &str = "usage: congos-node --id <i> --n <n> [options]

Runs one node of an n-node CONGOS cluster over localhost TCP.

required:
  --id <i>                 this node's id (0-based)
  --n <n>                  cluster size

options:
  --base-port <p>          first port of the cluster range; node i listens
                           on p+i (default 19000)
  --rounds <r>             rounds to execute (default 70)
  --seed <s>               master seed, must match across the cluster
                           (default 0)
  --topology <spec>        complete | expander:<d> | churn:<spec>
                           (default complete)
  --deadline <r>           deadline class of injected rumors (default 64)
  --wid-base <k>           first workload id for this node's injections
                           (default 0; coordinators pass disjoint bases so
                           ids stay unique across the cluster)
  --inject <round>:<d1,d2,..>:<hex>
                           inject a rumor at <round> for destinations
                           <d1,d2,..> with hex-encoded payload; repeatable
  --json                   end with one machine-readable JSON report line
  --help                   show this help";

fn usage_error(msg: &str) -> ! {
    eprintln!("congos-node: {msg}");
    eprintln!("{USAGE}");
    exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut id: Option<usize> = None;
    let mut n: Option<usize> = None;
    let mut base_port: u16 = 19000;
    let mut rounds: u64 = 70;
    let mut seed: u64 = 0;
    let mut deadline: u64 = 64;
    let mut wid_base: u64 = 0;
    let mut topology = TopologySpec::Complete;
    let mut json = false;
    // (round, dests, payload) — wids and deadlines are assigned after the
    // loop so flag order doesn't matter.
    let mut raw_injections: Vec<(u64, Vec<ProcessId>, Vec<u8>)> = Vec::new();

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            println!("{USAGE}");
            return;
        }
        if flag == "--json" {
            json = true;
            continue;
        }
        let val = it
            .next()
            .unwrap_or_else(|| usage_error(&format!("flag {flag} needs a value")));
        let parse_fail = || -> ! { usage_error(&format!("bad value {val:?} for {flag}")) };
        match flag.as_str() {
            "--id" => id = Some(val.parse().unwrap_or_else(|_| parse_fail())),
            "--n" => n = Some(val.parse().unwrap_or_else(|_| parse_fail())),
            "--base-port" => base_port = val.parse().unwrap_or_else(|_| parse_fail()),
            "--rounds" => rounds = val.parse().unwrap_or_else(|_| parse_fail()),
            "--seed" => seed = val.parse().unwrap_or_else(|_| parse_fail()),
            "--deadline" => deadline = val.parse().unwrap_or_else(|_| parse_fail()),
            "--wid-base" => wid_base = val.parse().unwrap_or_else(|_| parse_fail()),
            "--topology" => topology = val.parse().unwrap_or_else(|_| parse_fail()),
            "--inject" => {
                let parts: Vec<&str> = val.splitn(3, ':').collect();
                if parts.len() != 3 {
                    usage_error(&format!(
                        "--inject wants <round>:<d1,d2,..>:<hex>, got {val:?}"
                    ));
                }
                let round: u64 = parts[0].parse().unwrap_or_else(|_| parse_fail());
                let dest: Vec<ProcessId> = parts[1]
                    .split(',')
                    .map(|d| ProcessId::new(d.parse().unwrap_or_else(|_| parse_fail())))
                    .collect();
                let data = decode_hex(parts[2]).unwrap_or_else(|| parse_fail());
                raw_injections.push((round, dest, data));
            }
            other => usage_error(&format!("unknown flag {other:?}")),
        }
    }
    let (Some(id), Some(n)) = (id, n) else {
        usage_error("--id and --n are required")
    };
    if id >= n {
        usage_error(&format!("--id {id} out of range for --n {n}"));
    }
    let injections: Vec<(u64, CongosInput)> = raw_injections
        .into_iter()
        .enumerate()
        .map(|(i, (round, dest, data))| {
            (
                round,
                CongosInput {
                    wid: wid_base + i as u64,
                    data,
                    deadline,
                    dest,
                },
            )
        })
        .collect();

    match run_node_process(id, n, base_port, rounds, seed, topology, injections) {
        Ok(report) => {
            for d in &report.deliveries {
                println!(
                    "round {} process p{} delivered wid={} ({} bytes) via {:?}",
                    d.round.as_u64(),
                    id,
                    d.value.wid,
                    d.value.data.len(),
                    d.value.via
                );
            }
            if json {
                println!("{}", report_json(id, &report));
            }
        }
        Err(e) => {
            eprintln!("congos-node: node {id} failed: {e}");
            exit(1);
        }
    }
}

/// One-line JSON report (hand-rolled; the repo carries no serde).
fn report_json(id: usize, report: &congos_net::NodeReport) -> String {
    let mut s = format!(
        "{{\"id\":{id},\"rounds\":{},\"messages\":{},\"topology_drops\":{},\"deliveries\":[",
        report.rounds, report.messages, report.topology_drops
    );
    for (i, d) in report.deliveries.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"wid\":{},\"round\":{},\"process\":{},\"bytes\":{}}}",
            d.value.wid,
            d.round.as_u64(),
            d.process.as_usize(),
            d.value.data.len()
        ));
    }
    s.push_str("]}");
    s
}

fn decode_hex(s: &str) -> Option<Vec<u8>> {
    if s.len() % 2 != 0 {
        return None;
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).ok())
        .collect()
}
