//! Wire framing: length-prefixed JSON.
//!
//! JSON keeps the demo runtime dependency-light and debuggable (you can
//! `tcpdump` a round and read it); a production deployment would swap in a
//! binary codec behind the same two functions.

use std::io::{self, Read, Write};

use serde::{Deserialize, Serialize};

use congos::CongosMsg;
use congos_sim::ProcessId;

/// One framed unit on the wire.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum WireFrame {
    /// A protocol message for this node, sent in round `round`.
    Msg {
        /// Sending process.
        src: ProcessId,
        /// Round number.
        round: u64,
        /// Sending service's tag name (resolved via
        /// [`congos::tag_by_name`] on receipt).
        tag: String,
        /// The protocol payload.
        payload: CongosMsg,
    },
    /// "I have sent everything I will send in round `round`."
    EndOfRound {
        /// Sending process.
        src: ProcessId,
        /// Round number.
        round: u64,
    },
}

/// Writes one frame: a little-endian `u32` length followed by JSON bytes.
///
/// # Errors
///
/// Propagates I/O errors from the writer; serialization of [`WireFrame`]
/// itself cannot fail.
pub fn encode_frame<W: Write>(w: &mut W, frame: &WireFrame) -> io::Result<()> {
    let bytes = serde_json::to_vec(frame).expect("WireFrame serializes");
    let len = u32::try_from(bytes.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame too large"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&bytes)
}

/// Reads one frame written by [`encode_frame`].
///
/// # Errors
///
/// Returns the underlying I/O error (including clean EOF as
/// `UnexpectedEof`) or an `InvalidData` error for malformed JSON.
pub fn decode_frame<R: Read>(r: &mut R) -> io::Result<WireFrame> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf) as usize;
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    serde_json::from_slice(&buf)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use congos::{CongosMsg, CongosRumorId, Rumor};
    use congos_sim::{IdSet, Round};

    fn sample_msg() -> CongosMsg {
        CongosMsg::Shoot {
            rumor: Rumor {
                wid: 9,
                data: vec![1, 2, 3],
                deadline: 64,
                dest: IdSet::from_iter(8, [ProcessId::new(3)]),
            },
            rid: CongosRumorId {
                source: ProcessId::new(0),
                birth: Round(5),
                seq: 0,
            },
            direct: false,
        }
    }

    #[test]
    fn frame_round_trip() {
        let frame = WireFrame::Msg {
            src: ProcessId::new(1),
            round: 7,
            tag: "shoot".into(),
            payload: sample_msg(),
        };
        let mut buf = Vec::new();
        encode_frame(&mut buf, &frame).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        let back = decode_frame(&mut cursor).unwrap();
        assert_eq!(back, frame);
    }

    #[test]
    fn eor_round_trip_and_stream() {
        let mut buf = Vec::new();
        for r in 0..3u64 {
            encode_frame(
                &mut buf,
                &WireFrame::EndOfRound {
                    src: ProcessId::new(2),
                    round: r,
                },
            )
            .unwrap();
        }
        let mut cursor = std::io::Cursor::new(buf);
        for r in 0..3u64 {
            match decode_frame(&mut cursor).unwrap() {
                WireFrame::EndOfRound { src, round } => {
                    assert_eq!(src, ProcessId::new(2));
                    assert_eq!(round, r);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(decode_frame(&mut cursor).is_err(), "clean EOF errors out");
    }

    #[test]
    fn gossip_wire_serializes_through_arc() {
        // The Arc-shared gossip payloads must survive the codec (serde "rc").
        use congos::messages::GossipLane;
        use congos::GossipPayload;
        use congos_gossip::{GossipRumor, GossipWire, RumorId};
        use std::sync::Arc;
        let rumor = GossipRumor {
            id: RumorId {
                origin: ProcessId::new(0),
                birth: Round(1),
                seq: 0,
            },
            payload: Arc::new(GossipPayload::ProxyMeta {
                failed_proxies: vec![ProcessId::new(3)],
            }),
            duration: 8,
            deadline: Round(9),
            dest: IdSet::from_iter(4, [ProcessId::new(1)]),
        };
        let msg = CongosMsg::Gossip {
            lane: GossipLane::All { dline: 64 },
            wire: Box::new(GossipWire::Push(Arc::new(vec![rumor]))),
        };
        let frame = WireFrame::Msg {
            src: ProcessId::new(0),
            round: 1,
            tag: "all_gossip".into(),
            payload: msg,
        };
        let mut buf = Vec::new();
        encode_frame(&mut buf, &frame).unwrap();
        let back = decode_frame(&mut std::io::Cursor::new(buf)).unwrap();
        assert_eq!(back, frame);
    }
}
