//! Wire framing: length-prefixed binary.
//!
//! The codec is hand-rolled (no external serialization dependency): each
//! type is written as fixed-width little-endian fields plus length-prefixed
//! sequences, with one discriminant byte per enum. The format is internal
//! to the cluster runtime — both ends run the same build — so there is no
//! versioning; a production deployment would add a version byte behind the
//! same two functions.

use std::io::{self, Read, Write};
use std::sync::Arc;

use congos::messages::GossipLane;
use congos::{CongosMsg, CongosRumorId, FragStore, Fragment, GossipPayload, Rumor};
use congos_gossip::{GossipRumor, GossipWire, RumorId};
use congos_sim::{IdSet, ProcessId, Round};

/// One framed unit on the wire.
#[derive(Clone, Debug, PartialEq)]
pub enum WireFrame {
    /// A protocol message for this node, sent in round `round`.
    Msg {
        /// Sending process.
        src: ProcessId,
        /// Round number.
        round: u64,
        /// Sending service's tag name (resolved via
        /// [`congos::tag_by_name`] on receipt).
        tag: String,
        /// The protocol payload.
        payload: CongosMsg,
    },
    /// "I have sent everything I will send in round `round`."
    EndOfRound {
        /// Sending process.
        src: ProcessId,
        /// Round number.
        round: u64,
    },
}

/// Hard cap on the body of one frame. A peer (or corrupted stream) whose
/// length prefix exceeds this is rejected with `InvalidData` *before* any
/// allocation — the decoder never trusts the wire with its memory. Far
/// above any legitimate CONGOS frame (fragments are kilobytes), far below
/// anything that could hurt the host.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Writes one frame: a little-endian `u32` length followed by the binary
/// encoding.
///
/// # Errors
///
/// Propagates I/O errors from the writer; rejects frames larger than
/// [`MAX_FRAME_LEN`] (which [`decode_frame`] would refuse anyway) with
/// `InvalidData`.
pub fn encode_frame<W: Write>(w: &mut W, frame: &WireFrame) -> io::Result<()> {
    let mut buf = Vec::with_capacity(64);
    put_frame(&mut buf, frame);
    if buf.len() > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {} bytes exceeds MAX_FRAME_LEN", buf.len()),
        ));
    }
    let len = u32::try_from(buf.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame too large"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&buf)
}

/// Reads one frame written by [`encode_frame`].
///
/// Hostile-input hardened: the length prefix is capped by
/// [`MAX_FRAME_LEN`], every inner length prefix is bounded by the bytes
/// actually remaining in the frame, and every element count is validated
/// against a per-element minimum encoding size before any collection is
/// allocated. Malformed input of any shape yields an `io::Error`, never a
/// panic or an unbounded allocation.
///
/// # Errors
///
/// Returns the underlying I/O error (including clean EOF as
/// `UnexpectedEof`) or an `InvalidData` error for a malformed or oversized
/// encoding.
pub fn decode_frame<R: Read>(r: &mut R) -> io::Result<WireFrame> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_LEN {
        return Err(bad("frame length prefix exceeds MAX_FRAME_LEN"));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    let mut dec = Dec { buf: &buf, pos: 0 };
    let frame = take_frame(&mut dec)?;
    if dec.pos != buf.len() {
        return Err(bad("trailing bytes in frame"));
    }
    Ok(frame)
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

// ---------------------------------------------------------------- encoding

fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}
fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}
fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}
fn put_bytes(buf: &mut Vec<u8>, v: &[u8]) {
    put_u32(buf, v.len() as u32);
    buf.extend_from_slice(v);
}
fn put_pid(buf: &mut Vec<u8>, p: ProcessId) {
    put_u32(buf, p.as_usize() as u32);
}
fn put_idset(buf: &mut Vec<u8>, s: &IdSet) {
    // Universe followed by a packed membership bitmap (LSB-first within
    // each byte) — `⌈universe/8⌉` bytes regardless of density, which
    // `Fragment::wire_size` mirrors exactly.
    put_u32(buf, s.universe() as u32);
    let start = buf.len();
    buf.resize(start + s.universe().div_ceil(8), 0);
    for p in s.iter() {
        let i = p.as_usize();
        buf[start + i / 8] |= 1 << (i % 8);
    }
}
fn put_crid(buf: &mut Vec<u8>, id: &CongosRumorId) {
    put_pid(buf, id.source);
    put_u64(buf, id.birth.0);
    put_u32(buf, id.seq);
}
fn put_rid(buf: &mut Vec<u8>, id: &RumorId) {
    put_pid(buf, id.origin);
    put_u64(buf, id.birth.0);
    put_u32(buf, id.seq);
}
fn put_fragment(buf: &mut Vec<u8>, f: &Fragment) {
    put_crid(buf, &f.rid);
    put_u64(buf, f.wid);
    put_u16(buf, f.partition);
    put_u8(buf, f.group);
    put_u8(buf, f.k);
    put_bytes(buf, &f.bytes);
    put_idset(buf, &f.dest);
    put_u64(buf, f.dline);
}
fn put_hits(buf: &mut Vec<u8>, hits: &[(ProcessId, CongosRumorId)]) {
    put_u32(buf, hits.len() as u32);
    for (p, id) in hits {
        put_pid(buf, *p);
        put_crid(buf, id);
    }
}
fn put_payload(buf: &mut Vec<u8>, p: &GossipPayload) {
    match p {
        GossipPayload::Fragments(frags) => {
            put_u8(buf, 0);
            put_u32(buf, frags.len() as u32);
            for f in frags {
                put_fragment(buf, f);
            }
        }
        GossipPayload::ProxyMeta { failed_proxies } => {
            put_u8(buf, 1);
            put_u32(buf, failed_proxies.len() as u32);
            for p in failed_proxies {
                put_pid(buf, *p);
            }
        }
        GossipPayload::GdShare { hits } => {
            put_u8(buf, 2);
            put_hits(buf, hits);
        }
        GossipPayload::Distribution {
            partition,
            group,
            hits,
        } => {
            put_u8(buf, 3);
            put_u16(buf, *partition);
            put_u8(buf, *group);
            put_hits(buf, hits);
        }
    }
}
fn put_lane(buf: &mut Vec<u8>, lane: &GossipLane) {
    match lane {
        GossipLane::Group { dline, ell } => {
            put_u8(buf, 0);
            put_u64(buf, *dline);
            put_u16(buf, *ell);
        }
        GossipLane::All { dline } => {
            put_u8(buf, 1);
            put_u64(buf, *dline);
        }
    }
}
fn put_gossip_rumor(buf: &mut Vec<u8>, r: &GossipRumor<Arc<GossipPayload>>) {
    put_rid(buf, &r.id);
    put_payload(buf, &r.payload);
    put_u64(buf, r.duration);
    put_u64(buf, r.deadline.0);
    put_idset(buf, &r.dest);
    buf.push(r.best_effort as u8);
}
fn put_wire(buf: &mut Vec<u8>, w: &GossipWire<Arc<GossipPayload>>) {
    match w {
        GossipWire::Push(rumors) => {
            put_u8(buf, 0);
            put_u32(buf, rumors.len() as u32);
            for r in rumors.iter() {
                put_gossip_rumor(buf, r);
            }
        }
        GossipWire::Ack(ids) => {
            put_u8(buf, 1);
            put_u32(buf, ids.len() as u32);
            for id in ids {
                put_rid(buf, id);
            }
        }
    }
}
fn put_rumor(buf: &mut Vec<u8>, r: &Rumor) {
    put_u64(buf, r.wid);
    put_bytes(buf, &r.data);
    put_u64(buf, r.deadline);
    put_idset(buf, &r.dest);
}
fn put_msg(buf: &mut Vec<u8>, m: &CongosMsg) {
    match m {
        CongosMsg::Gossip { lane, wire } => {
            put_u8(buf, 0);
            put_lane(buf, lane);
            put_wire(buf, wire);
        }
        CongosMsg::ProxyRequest {
            dline,
            ell,
            fragments,
        } => {
            put_u8(buf, 1);
            put_u64(buf, *dline);
            put_u16(buf, *ell);
            put_u32(buf, fragments.len() as u32);
            for f in fragments {
                put_fragment(buf, f);
            }
        }
        CongosMsg::ProxyAck { dline, ell } => {
            put_u8(buf, 2);
            put_u64(buf, *dline);
            put_u16(buf, *ell);
        }
        CongosMsg::Partials {
            dline,
            ell,
            fragments,
        } => {
            put_u8(buf, 3);
            put_u64(buf, *dline);
            put_u16(buf, *ell);
            put_u32(buf, fragments.len() as u32);
            for f in fragments {
                put_fragment(buf, f);
            }
        }
        CongosMsg::Shoot { rumor, rid, direct } => {
            put_u8(buf, 4);
            put_rumor(buf, rumor);
            put_crid(buf, rid);
            put_u8(buf, u8::from(*direct));
        }
    }
}
fn put_frame(buf: &mut Vec<u8>, f: &WireFrame) {
    match f {
        WireFrame::Msg {
            src,
            round,
            tag,
            payload,
        } => {
            put_u8(buf, 0);
            put_pid(buf, *src);
            put_u64(buf, *round);
            put_bytes(buf, tag.as_bytes());
            put_msg(buf, payload);
        }
        WireFrame::EndOfRound { src, round } => {
            put_u8(buf, 1);
            put_pid(buf, *src);
            put_u64(buf, *round);
        }
    }
}

// ---------------------------------------------------------------- decoding

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Dec<'_> {
    fn take(&mut self, n: usize) -> io::Result<&[u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| bad("truncated frame"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> io::Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    /// Length prefix bounded by the remaining bytes (a corrupt length must
    /// not cause a huge allocation).
    fn len(&mut self) -> io::Result<usize> {
        let n = self.u32()? as usize;
        if n > self.buf.len() - self.pos {
            return Err(bad("length prefix exceeds frame"));
        }
        Ok(n)
    }
    fn bytes(&mut self) -> io::Result<Vec<u8>> {
        let n = self.len()?;
        Ok(self.take(n)?.to_vec())
    }
    /// Element count for a sequence whose elements each encode to at least
    /// `min_elem` bytes. The count is validated against the bytes actually
    /// remaining, so `Vec::with_capacity(count)` downstream is bounded by
    /// the (already capped) frame size — a hostile count cannot reserve
    /// more memory than the frame it arrived in.
    fn count(&mut self, min_elem: usize) -> io::Result<usize> {
        debug_assert!(min_elem >= 1);
        let n = self.u32()? as usize;
        let need = n
            .checked_mul(min_elem)
            .ok_or_else(|| bad("element count overflows"))?;
        if need > self.buf.len() - self.pos {
            return Err(bad("element count exceeds frame"));
        }
        Ok(n)
    }
}

/// Minimum encoded sizes (bytes) per element kind, used to validate counts
/// before allocating. Derived from the `put_*` encoders: every field is
/// fixed-width except the two inner length prefixes of a fragment, which
/// contribute at least their 4-byte prefix each.
mod min_size {
    /// pid(4) + birth(8) + seq(4).
    pub const CRID: usize = 16;
    /// Same layout as a CONGOS rumor id.
    pub const RID: usize = 16;
    /// crid + wid(8) + partition(2) + group(1) + k(1) + bytes prefix(4)
    /// + idset universe(4) + dline(8).
    pub const FRAGMENT: usize = CRID + 8 + 2 + 1 + 1 + 4 + 4 + 8;
    /// pid + crid.
    pub const HIT: usize = 4 + CRID;
    /// Bare process id.
    pub const PID: usize = 4;
    /// rid + payload discriminant(1) + duration(8) + deadline(8)
    /// + idset universe(4) + best_effort(1); the payload body adds more.
    pub const GOSSIP_RUMOR: usize = RID + 1 + 8 + 8 + 4 + 1;
}

fn take_pid(d: &mut Dec) -> io::Result<ProcessId> {
    Ok(ProcessId::new(d.u32()? as usize))
}
fn take_idset(d: &mut Dec) -> io::Result<IdSet> {
    let universe = d.u32()? as usize;
    let packed = d.take(universe.div_ceil(8))?.to_vec();
    let mut set = IdSet::empty(universe);
    for (i, &byte) in packed.iter().enumerate() {
        if byte == 0 {
            continue;
        }
        for b in 0..8 {
            if byte & (1 << b) != 0 {
                let id = i * 8 + b;
                if id >= universe {
                    return Err(bad("idset bit outside universe"));
                }
                set.insert(ProcessId::new(id));
            }
        }
    }
    Ok(set)
}
fn take_crid(d: &mut Dec) -> io::Result<CongosRumorId> {
    Ok(CongosRumorId {
        source: take_pid(d)?,
        birth: Round(d.u64()?),
        seq: d.u32()?,
    })
}
fn take_rid(d: &mut Dec) -> io::Result<RumorId> {
    Ok(RumorId {
        origin: take_pid(d)?,
        birth: Round(d.u64()?),
        seq: d.u32()?,
    })
}
fn take_fragment(d: &mut Dec) -> io::Result<Fragment> {
    // Decoded fragments re-enter the interner: fragments arriving from
    // many peers (or repeatedly, via epidemic push) collapse to one
    // allocation per distinct byte string / destination set.
    let store = FragStore::global();
    Ok(Fragment {
        rid: take_crid(d)?,
        wid: d.u64()?,
        partition: d.u16()?,
        group: d.u8()?,
        k: d.u8()?,
        bytes: store.intern_bytes(&d.bytes()?),
        dest: store.intern_dest(&take_idset(d)?),
        dline: d.u64()?,
    })
}
fn take_fragments(d: &mut Dec) -> io::Result<Vec<Fragment>> {
    let count = d.count(min_size::FRAGMENT)?;
    let mut v = Vec::with_capacity(count);
    for _ in 0..count {
        v.push(take_fragment(d)?);
    }
    Ok(v)
}
fn take_hits(d: &mut Dec) -> io::Result<Vec<(ProcessId, CongosRumorId)>> {
    let count = d.count(min_size::HIT)?;
    let mut v = Vec::with_capacity(count);
    for _ in 0..count {
        v.push((take_pid(d)?, take_crid(d)?));
    }
    Ok(v)
}
fn take_payload(d: &mut Dec) -> io::Result<GossipPayload> {
    match d.u8()? {
        0 => Ok(GossipPayload::Fragments(take_fragments(d)?)),
        1 => {
            let count = d.count(min_size::PID)?;
            let mut failed_proxies = Vec::with_capacity(count);
            for _ in 0..count {
                failed_proxies.push(take_pid(d)?);
            }
            Ok(GossipPayload::ProxyMeta { failed_proxies })
        }
        2 => Ok(GossipPayload::GdShare {
            hits: take_hits(d)?,
        }),
        3 => Ok(GossipPayload::Distribution {
            partition: d.u16()?,
            group: d.u8()?,
            hits: take_hits(d)?,
        }),
        _ => Err(bad("bad GossipPayload discriminant")),
    }
}
fn take_lane(d: &mut Dec) -> io::Result<GossipLane> {
    match d.u8()? {
        0 => Ok(GossipLane::Group {
            dline: d.u64()?,
            ell: d.u16()?,
        }),
        1 => Ok(GossipLane::All { dline: d.u64()? }),
        _ => Err(bad("bad GossipLane discriminant")),
    }
}
fn take_gossip_rumor(d: &mut Dec) -> io::Result<GossipRumor<Arc<GossipPayload>>> {
    Ok(GossipRumor {
        id: take_rid(d)?,
        payload: Arc::new(take_payload(d)?),
        duration: d.u64()?,
        deadline: Round(d.u64()?),
        dest: Arc::new(take_idset(d)?),
        best_effort: d.u8()? != 0,
    })
}
fn take_wire(d: &mut Dec) -> io::Result<GossipWire<Arc<GossipPayload>>> {
    match d.u8()? {
        0 => {
            let count = d.count(min_size::GOSSIP_RUMOR)?;
            let mut rumors = Vec::with_capacity(count);
            for _ in 0..count {
                rumors.push(take_gossip_rumor(d)?);
            }
            Ok(GossipWire::Push(Arc::new(rumors)))
        }
        1 => {
            let count = d.count(min_size::RID)?;
            let mut ids = Vec::with_capacity(count);
            for _ in 0..count {
                ids.push(take_rid(d)?);
            }
            Ok(GossipWire::Ack(ids))
        }
        _ => Err(bad("bad GossipWire discriminant")),
    }
}
fn take_rumor(d: &mut Dec) -> io::Result<Rumor> {
    Ok(Rumor {
        wid: d.u64()?,
        data: d.bytes()?,
        deadline: d.u64()?,
        dest: take_idset(d)?,
    })
}
fn take_msg(d: &mut Dec) -> io::Result<CongosMsg> {
    match d.u8()? {
        0 => Ok(CongosMsg::Gossip {
            lane: take_lane(d)?,
            wire: Box::new(take_wire(d)?),
        }),
        1 => Ok(CongosMsg::ProxyRequest {
            dline: d.u64()?,
            ell: d.u16()?,
            fragments: take_fragments(d)?,
        }),
        2 => Ok(CongosMsg::ProxyAck {
            dline: d.u64()?,
            ell: d.u16()?,
        }),
        3 => Ok(CongosMsg::Partials {
            dline: d.u64()?,
            ell: d.u16()?,
            fragments: take_fragments(d)?,
        }),
        4 => Ok(CongosMsg::Shoot {
            rumor: take_rumor(d)?,
            rid: take_crid(d)?,
            direct: match d.u8()? {
                0 => false,
                1 => true,
                _ => return Err(bad("bad bool")),
            },
        }),
        _ => Err(bad("bad CongosMsg discriminant")),
    }
}
fn take_frame(d: &mut Dec) -> io::Result<WireFrame> {
    match d.u8()? {
        0 => Ok(WireFrame::Msg {
            src: take_pid(d)?,
            round: d.u64()?,
            tag: String::from_utf8(d.bytes()?).map_err(|_| bad("tag not utf-8"))?,
            payload: take_msg(d)?,
        }),
        1 => Ok(WireFrame::EndOfRound {
            src: take_pid(d)?,
            round: d.u64()?,
        }),
        _ => Err(bad("bad WireFrame discriminant")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congos::{CongosMsg, CongosRumorId, Rumor};
    use congos_sim::{IdSet, Round};

    fn sample_msg() -> CongosMsg {
        CongosMsg::Shoot {
            rumor: Rumor {
                wid: 9,
                data: vec![1, 2, 3],
                deadline: 64,
                dest: IdSet::from_iter(8, [ProcessId::new(3)]),
            },
            rid: CongosRumorId {
                source: ProcessId::new(0),
                birth: Round(5),
                seq: 0,
            },
            direct: false,
        }
    }

    #[test]
    fn frame_round_trip() {
        let frame = WireFrame::Msg {
            src: ProcessId::new(1),
            round: 7,
            tag: "shoot".into(),
            payload: sample_msg(),
        };
        let mut buf = Vec::new();
        encode_frame(&mut buf, &frame).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        let back = decode_frame(&mut cursor).unwrap();
        assert_eq!(back, frame);
    }

    #[test]
    fn eor_round_trip_and_stream() {
        let mut buf = Vec::new();
        for r in 0..3u64 {
            encode_frame(
                &mut buf,
                &WireFrame::EndOfRound {
                    src: ProcessId::new(2),
                    round: r,
                },
            )
            .unwrap();
        }
        let mut cursor = std::io::Cursor::new(buf);
        for r in 0..3u64 {
            match decode_frame(&mut cursor).unwrap() {
                WireFrame::EndOfRound { src, round } => {
                    assert_eq!(src, ProcessId::new(2));
                    assert_eq!(round, r);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(decode_frame(&mut cursor).is_err(), "clean EOF errors out");
    }

    #[test]
    fn gossip_wire_serializes_through_arc() {
        // The Arc-shared gossip payloads must survive the codec.
        use congos::messages::GossipLane;
        use congos::GossipPayload;
        use congos_gossip::{GossipRumor, GossipWire, RumorId};
        use std::sync::Arc;
        let rumor = GossipRumor {
            id: RumorId {
                origin: ProcessId::new(0),
                birth: Round(1),
                seq: 0,
            },
            payload: Arc::new(GossipPayload::ProxyMeta {
                failed_proxies: vec![ProcessId::new(3)],
            }),
            duration: 8,
            deadline: Round(9),
            dest: Arc::new(IdSet::from_iter(4, [ProcessId::new(1)])),
            best_effort: false,
        };
        let msg = CongosMsg::Gossip {
            lane: GossipLane::All { dline: 64 },
            wire: Box::new(GossipWire::Push(Arc::new(vec![rumor]))),
        };
        let frame = WireFrame::Msg {
            src: ProcessId::new(0),
            round: 1,
            tag: "all_gossip".into(),
            payload: msg,
        };
        let mut buf = Vec::new();
        encode_frame(&mut buf, &frame).unwrap();
        let back = decode_frame(&mut std::io::Cursor::new(buf)).unwrap();
        assert_eq!(back, frame);
    }

    #[test]
    fn fragment_wire_size_matches_encoder_exactly() {
        // `Fragment::wire_size` (the basis of the communication metrics)
        // must agree byte-for-byte with what the codec emits, for random
        // fragments across payload lengths, universes and densities.
        use congos::Fragment;
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(0xF7A6);
        for trial in 0..200 {
            let len = rng.gen_range(0..96);
            let universe = rng.gen_range(1..200usize);
            let members = rng.gen_range(0..=universe);
            let dest = IdSet::from_iter(
                universe,
                (0..members).map(|_| ProcessId::new(rng.gen_range(0..universe))),
            );
            let f = Fragment {
                rid: CongosRumorId {
                    source: ProcessId::new(rng.gen_range(0..universe)),
                    birth: Round(rng.gen_range(0..1000u64)),
                    seq: rng.gen_range(0..4u32),
                },
                wid: rng.gen(),
                partition: rng.gen_range(0..8u16),
                group: rng.gen_range(0..6u8),
                k: rng.gen_range(1..7u8),
                bytes: (0..len).map(|_| rng.gen::<u8>()).collect::<Vec<u8>>().into(),
                dest: dest.into(),
                dline: 64,
            };
            let mut buf = Vec::new();
            put_fragment(&mut buf, &f);
            assert_eq!(
                buf.len() as u64,
                f.wire_size(),
                "trial {trial}: encoder wrote {} bytes, wire_size says {}",
                buf.len(),
                f.wire_size()
            );
            // And the encoding round-trips through the interning decoder.
            let mut d = Dec { buf: &buf, pos: 0 };
            let back = take_fragment(&mut d).unwrap();
            assert_eq!(d.pos, buf.len());
            assert_eq!(back, f);
        }
    }

    #[test]
    fn decoded_fragments_are_interned() {
        use congos::{FragBytes, Fragment};
        let f = Fragment {
            rid: CongosRumorId {
                source: ProcessId::new(1),
                birth: Round(2),
                seq: 0,
            },
            wid: 3,
            partition: 0,
            group: 1,
            k: 2,
            bytes: vec![0xAB; 32].into(),
            dest: IdSet::from_iter(16, [ProcessId::new(4), ProcessId::new(9)]).into(),
            dline: 64,
        };
        let mut buf = Vec::new();
        put_fragment(&mut buf, &f);
        let a = take_fragment(&mut Dec { buf: &buf, pos: 0 }).unwrap();
        let b = take_fragment(&mut Dec { buf: &buf, pos: 0 }).unwrap();
        assert!(
            FragBytes::ptr_eq(&a.bytes, &b.bytes),
            "two decodes of one fragment share the byte allocation"
        );
        assert!(congos::DestRef::ptr_eq(&a.dest, &b.dest));
    }

    #[test]
    fn malformed_frames_error_cleanly() {
        // Bad discriminant.
        let mut buf = Vec::new();
        buf.extend_from_slice(&2u32.to_le_bytes());
        buf.extend_from_slice(&[9u8, 0]);
        assert!(decode_frame(&mut std::io::Cursor::new(buf)).is_err());
        // Truncated body.
        let mut buf = Vec::new();
        buf.extend_from_slice(&100u32.to_le_bytes());
        buf.extend_from_slice(&[0u8; 5]);
        assert!(decode_frame(&mut std::io::Cursor::new(buf)).is_err());
        // Length prefix pointing past the frame end.
        let frame = WireFrame::Msg {
            src: ProcessId::new(1),
            round: 0,
            tag: "shoot".into(),
            payload: sample_msg(),
        };
        let mut buf = Vec::new();
        encode_frame(&mut buf, &frame).unwrap();
        // Corrupt the tag length (offset: 4 frame len + 1 disc + 4 pid + 8 round).
        buf[17] = 0xFF;
        assert!(decode_frame(&mut std::io::Cursor::new(buf)).is_err());
    }

    #[test]
    fn oversized_length_prefix_rejected_without_allocation() {
        // A hostile 4 GiB length prefix must be refused up front — if the
        // decoder tried to honor it, `vec![0u8; len]` would OOM the host.
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = decode_frame(&mut std::io::Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("MAX_FRAME_LEN"), "{err}");
        // Just over the cap is refused too; at most MAX_FRAME_LEN is read.
        let mut buf = Vec::new();
        buf.extend_from_slice(&((MAX_FRAME_LEN as u32) + 1).to_le_bytes());
        buf.extend_from_slice(&[0u8; 64]);
        assert!(decode_frame(&mut std::io::Cursor::new(buf)).is_err());
    }

    #[test]
    fn hostile_element_count_rejected_before_allocation() {
        // A Gossip/Push frame claiming u32::MAX rumors in a tiny body must
        // fail the count-vs-remaining-bytes check, not reserve gigabytes.
        let mut body = Vec::new();
        put_u8(&mut body, 0); // WireFrame::Msg
        put_pid(&mut body, ProcessId::new(0));
        put_u64(&mut body, 0); // round
        put_bytes(&mut body, b"all_gossip");
        put_u8(&mut body, 0); // CongosMsg::Gossip
        put_u8(&mut body, 1); // GossipLane::All
        put_u64(&mut body, 64); // dline
        put_u8(&mut body, 0); // GossipWire::Push
        put_u32(&mut body, u32::MAX); // hostile rumor count
        let mut buf = Vec::new();
        buf.extend_from_slice(&(body.len() as u32).to_le_bytes());
        buf.extend_from_slice(&body);
        let err = decode_frame(&mut std::io::Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // Same for a ProxyRequest with a hostile fragment count.
        let mut body = Vec::new();
        put_u8(&mut body, 0);
        put_pid(&mut body, ProcessId::new(1));
        put_u64(&mut body, 3);
        put_bytes(&mut body, b"proxy");
        put_u8(&mut body, 1); // CongosMsg::ProxyRequest
        put_u64(&mut body, 64);
        put_u16(&mut body, 0);
        put_u32(&mut body, 50_000_000); // hostile fragment count
        let mut buf = Vec::new();
        buf.extend_from_slice(&(body.len() as u32).to_le_bytes());
        buf.extend_from_slice(&body);
        assert!(decode_frame(&mut std::io::Cursor::new(buf)).is_err());
    }

    #[test]
    fn encode_rejects_oversized_frame() {
        use congos::Fragment;
        // A fragment with a payload bigger than MAX_FRAME_LEN cannot be
        // framed (one rumor's fragments are ~|rumor|/g bytes, so this only
        // triggers on absurd inputs — but the check keeps encode and decode
        // symmetric).
        let f = Fragment {
            rid: CongosRumorId {
                source: ProcessId::new(0),
                birth: Round(0),
                seq: 0,
            },
            wid: 0,
            partition: 0,
            group: 0,
            k: 1,
            bytes: vec![0u8; MAX_FRAME_LEN + 1].into(),
            dest: IdSet::empty(4).into(),
            dline: 64,
        };
        let frame = WireFrame::Msg {
            src: ProcessId::new(0),
            round: 0,
            tag: "partials".into(),
            payload: CongosMsg::Partials {
                dline: 64,
                ell: 0,
                fragments: vec![f],
            },
        };
        let mut sink = Vec::new();
        let err = encode_frame(&mut sink, &frame).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(sink.is_empty(), "nothing was written");
    }
}
