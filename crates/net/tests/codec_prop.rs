//! Property tests for the wire codec's hostile-input behavior.
//!
//! The contract of `decode_frame` is: *any* byte stream — truncated,
//! bit-flipped, or outright random — yields `Ok` or an `io::Error`, never a
//! panic and never an allocation beyond the (capped) frame length. These
//! tests drive that contract with randomized corruption of a corpus of
//! valid encodings covering every `CongosMsg` variant.

use std::io::Cursor;
use std::sync::Arc;

use congos::messages::GossipLane;
use congos::{CongosMsg, CongosRumorId, Fragment, GossipPayload, Rumor};
use congos_gossip::{GossipRumor, GossipWire, RumorId};
use congos_net::{decode_frame, encode_frame, WireFrame};
use congos_sim::{IdSet, ProcessId, Round};
use proptest::prelude::*;

fn fragment(seq: u32) -> Fragment {
    Fragment {
        rid: CongosRumorId {
            source: ProcessId::new(seq as usize % 4),
            birth: Round(seq as u64),
            seq,
        },
        wid: 10 + seq as u64,
        partition: (seq % 3) as u16,
        group: (seq % 2) as u8,
        k: 2,
        bytes: vec![seq as u8; 24 + seq as usize % 8].into(),
        dest: IdSet::from_iter(8, [ProcessId::new(1), ProcessId::new(5)]).into(),
        dline: 64,
    }
}

fn rid(seq: u32) -> RumorId {
    RumorId {
        origin: ProcessId::new(seq as usize % 4),
        birth: Round(2),
        seq,
    }
}

fn gossip_rumor(payload: GossipPayload) -> GossipRumor<Arc<GossipPayload>> {
    GossipRumor {
        id: rid(0),
        payload: Arc::new(payload),
        duration: 8,
        deadline: Round(40),
        dest: Arc::new(IdSet::from_iter(8, [ProcessId::new(2)])),
        best_effort: false,
    }
}

fn msg_frame(tag: &str, payload: CongosMsg) -> WireFrame {
    WireFrame::Msg {
        src: ProcessId::new(1),
        round: 6,
        tag: tag.into(),
        payload,
    }
}

/// A corpus of valid frames touching every wire variant: both `WireFrame`s,
/// all five `CongosMsg`s, both `GossipWire`s, all four `GossipPayload`s.
fn corpus() -> Vec<Vec<u8>> {
    let frames = vec![
        WireFrame::EndOfRound {
            src: ProcessId::new(3),
            round: 12,
        },
        msg_frame(
            "shoot",
            CongosMsg::Shoot {
                rumor: Rumor {
                    wid: 7,
                    data: b"confidential".to_vec(),
                    deadline: 64,
                    dest: IdSet::from_iter(8, [ProcessId::new(0), ProcessId::new(6)]),
                },
                rid: CongosRumorId {
                    source: ProcessId::new(2),
                    birth: Round(3),
                    seq: 1,
                },
                direct: true,
            },
        ),
        msg_frame(
            "group_gossip",
            CongosMsg::Gossip {
                lane: GossipLane::Group { dline: 64, ell: 1 },
                wire: Box::new(GossipWire::Push(Arc::new(vec![gossip_rumor(
                    GossipPayload::Fragments(vec![fragment(0), fragment(1)]),
                )]))),
            },
        ),
        msg_frame(
            "all_gossip",
            CongosMsg::Gossip {
                lane: GossipLane::All { dline: 64 },
                wire: Box::new(GossipWire::Push(Arc::new(vec![
                    gossip_rumor(GossipPayload::ProxyMeta {
                        failed_proxies: vec![ProcessId::new(1), ProcessId::new(3)],
                    }),
                    gossip_rumor(GossipPayload::GdShare {
                        hits: vec![(
                            ProcessId::new(0),
                            CongosRumorId {
                                source: ProcessId::new(0),
                                birth: Round(1),
                                seq: 0,
                            },
                        )],
                    }),
                    gossip_rumor(GossipPayload::Distribution {
                        partition: 1,
                        group: 0,
                        hits: vec![],
                    }),
                ]))),
            },
        ),
        msg_frame(
            "all_gossip",
            CongosMsg::Gossip {
                lane: GossipLane::All { dline: 64 },
                wire: Box::new(GossipWire::Ack(vec![rid(0), rid(1), rid(2)])),
            },
        ),
        msg_frame(
            "proxy",
            CongosMsg::ProxyRequest {
                dline: 64,
                ell: 2,
                fragments: vec![fragment(2)],
            },
        ),
        msg_frame("proxy", CongosMsg::ProxyAck { dline: 64, ell: 2 }),
        msg_frame(
            "partials",
            CongosMsg::Partials {
                dline: 64,
                ell: 0,
                fragments: vec![fragment(3), fragment(4), fragment(5)],
            },
        ),
    ];
    frames
        .iter()
        .map(|f| {
            let mut buf = Vec::new();
            encode_frame(&mut buf, f).expect("corpus frames encode");
            buf
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every strict prefix of a valid encoding must fail to decode — there
    /// is no truncation point that yields a spurious success, and none that
    /// panics.
    #[test]
    fn truncations_error_cleanly(which in any::<usize>(), cut in any::<usize>()) {
        let corpus = corpus();
        let buf = &corpus[which % corpus.len()];
        let cut = cut % buf.len(); // 0..len, always a strict prefix
        let err = decode_frame(&mut Cursor::new(&buf[..cut]));
        prop_assert!(err.is_err(), "decoding a {cut}-byte prefix of a {}-byte frame succeeded", buf.len());
    }

    /// A single flipped bit anywhere in a valid encoding must decode to
    /// `Ok` or `Err` — never panic, never hang, never allocate past the
    /// frame cap. (Flips in payload bytes legitimately still decode; flips
    /// in discriminants, lengths and counts must be caught.)
    #[test]
    fn bit_flips_never_panic(
        which in any::<usize>(),
        byte in any::<usize>(),
        bit in 0u8..8,
    ) {
        let corpus = corpus();
        let mut buf = corpus[which % corpus.len()].clone();
        let i = byte % buf.len();
        buf[i] ^= 1 << bit;
        let _ = decode_frame(&mut Cursor::new(&buf)); // Ok or Err, both fine
    }

    /// Multiple corruptions at once: random byte overwrites on top of a
    /// truncation. The decoder must stay panic-free on arbitrarily mangled
    /// frames.
    #[test]
    fn stacked_corruption_never_panics(
        which in any::<usize>(),
        cut in any::<usize>(),
        writes in prop::collection::vec((any::<usize>(), any::<u8>()), 0..8),
    ) {
        let corpus = corpus();
        let buf = &corpus[which % corpus.len()];
        let mut mangled = buf[..4 + cut % (buf.len() - 3)].to_vec(); // keep the length prefix
        for (pos, val) in writes {
            let i = pos % mangled.len();
            mangled[i] = val;
        }
        let _ = decode_frame(&mut Cursor::new(&mangled));
    }

    /// Pure noise: random byte strings (with a sane length prefix bolted
    /// on, so the decoder gets past the frame read) never panic.
    #[test]
    fn random_bytes_never_panic(body in prop::collection::vec(any::<u8>(), 0..512)) {
        let mut buf = Vec::with_capacity(4 + body.len());
        buf.extend_from_slice(&(body.len() as u32).to_le_bytes());
        buf.extend_from_slice(&body);
        let _ = decode_frame(&mut Cursor::new(&buf));
    }

    /// Corrupting only the outer length prefix: any 4-byte value either
    /// decodes (len unchanged), errors, or is rejected by the frame cap —
    /// and the rejection happens before the decoder allocates the claimed
    /// length.
    #[test]
    fn length_prefix_corruption_is_bounded(which in any::<usize>(), len in any::<u32>()) {
        let corpus = corpus();
        let mut buf = corpus[which % corpus.len()].clone();
        buf[..4].copy_from_slice(&len.to_le_bytes());
        let res = decode_frame(&mut Cursor::new(&buf));
        if len as usize > congos_net::codec::MAX_FRAME_LEN {
            let err = res.expect_err("oversized prefix must be refused");
            prop_assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        }
    }
}

/// Sanity outside proptest: the corpus itself round-trips, so the
/// corruption tests above start from genuinely valid encodings.
#[test]
fn corpus_is_valid() {
    for buf in corpus() {
        let frame = decode_frame(&mut Cursor::new(&buf)).expect("corpus decodes");
        let mut re = Vec::new();
        encode_frame(&mut re, &frame).expect("corpus re-encodes");
        assert_eq!(re, buf, "canonical encoding is stable");
    }
}
