//! True multi-process deployment: spawn one OS process per node via the
//! `congos-node` binary and check the rumor crosses process boundaries.

use std::process::{Command, Stdio};

#[test]
fn four_os_processes_deliver_a_rumor() {
    let bin = env!("CARGO_BIN_EXE_congos-node");
    let n = 4;
    let base_port = 19400;
    let mut children = Vec::new();
    for id in 0..n {
        let mut cmd = Command::new(bin);
        cmd.args([
            "--id",
            &id.to_string(),
            "--n",
            &n.to_string(),
            "--base-port",
            &base_port.to_string(),
            "--rounds",
            "70",
            "--seed",
            "9",
        ]);
        if id == 0 {
            // "hi!" to processes 2 and 3, injected at round 0.
            cmd.args(["--inject", "0:2,3:686921"]);
        }
        cmd.stdout(Stdio::piped()).stderr(Stdio::piped());
        children.push((id, cmd.spawn().expect("spawn node")));
    }

    let mut delivered = Vec::new();
    for (id, child) in children {
        let out = child.wait_with_output().expect("node exits");
        assert!(
            out.status.success(),
            "node {id} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        for line in stdout.lines() {
            if line.contains("delivered wid=0") {
                delivered.push(id);
            }
        }
    }
    delivered.sort_unstable();
    assert_eq!(delivered, vec![2, 3], "exactly the two destinations deliver");
}
